"""Durable job journal + job-manager robustness (repro.jobs.store).

Covers the journal's CRUD surface, the carry rebuilt from journaled
shards, in-process resume through ``InferenceService.resume_jobs`` (the
subprocess kill/restart variant lives in test_restart_resume.py), the
worker-loop isolation fix, and event-stream heartbeats.
"""

import threading
import time

import pytest

from repro.api.config import DeriveConfig
from repro.api.service import DeriveRequest, InferenceService
from repro.api.session import Session
from repro.core.learning import learn_mrsl
from repro.exec import execute_derivation
from repro.jobs import Job, JobManager, JobStore
from repro.relational import Relation, Schema
from tests.conftest import FIG1_ROWS

FIG1_SCHEMA = {
    "age": ["20", "30", "40"],
    "edu": ["HS", "BS", "MS"],
    "inc": ["50K", "100K"],
    "nw": ["100K", "500K"],
}
CONFIG = {"support_threshold": 0.1, "num_samples": 30, "burn_in": 5, "seed": 3}
PAYLOAD = {
    "schema": FIG1_SCHEMA,
    "rows": FIG1_ROWS,
    "config": CONFIG,
    "include_blocks": True,
}


@pytest.fixture
def store(tmp_path):
    s = JobStore(tmp_path / "state")
    yield s
    s.close()


def _journal_partial_run(store, job_id, keep_shards=1):
    """Journal ``PAYLOAD``'s derivation interrupted after ``keep_shards``.

    Runs the derivation the request describes out-of-band, records its plan
    seed plus the first ``keep_shards`` completed shards, and leaves the
    job ``running`` — exactly the journal a killed server leaves behind.
    Returns the total number of planned shards.
    """
    store.create_job(job_id, "derive", "derive", PAYLOAD)
    store.set_state(job_id, "running")
    relation = Relation.from_rows(
        Schema.from_domains(FIG1_SCHEMA), FIG1_ROWS
    )
    config = DeriveConfig(**CONFIG)
    model = learn_mrsl(
        relation,
        support_threshold=config.support_threshold,
        max_itemsets=config.max_itemsets,
    ).model
    recorded = []

    def on_plan(plan):
        store.record_plan(job_id, plan.base_seed)
        recorded.append(len(plan.shards))

    def on_shard(result):
        if len(recorded) - 1 < keep_shards:
            store.record_shard(job_id, result.key, result.kind, result.blocks)
            recorded.append(result.key)

    execute_derivation(
        list(relation.incomplete_part()), model, config,
        on_plan=on_plan, on_shard=on_shard,
    )
    return recorded[0]


# -- the store itself --------------------------------------------------------


class TestJobStore:
    def test_job_round_trip(self, store):
        store.create_job("j1", "derive", "derive", PAYLOAD)
        record = store.get("j1")
        assert record.state == "queued"
        assert record.request == PAYLOAD
        assert record.base_seed is None
        store.set_state("j1", "failed", error="boom")
        record = store.get("j1")
        assert record.state == "failed"
        assert record.error == "boom"
        assert store.get("missing") is None

    def test_resumable_filters_terminal_states(self, store):
        for job_id, state in (
            ("a", "queued"), ("b", "running"), ("c", "done"), ("d", "failed"),
        ):
            store.create_job(job_id, "derive", "derive", {})
            store.set_state(job_id, state)
        assert [r.id for r in store.load_resumable()] == ["a", "b"]
        assert len(store.load_jobs()) == 4

    def test_shard_journal_round_trip(self, store):
        total = _journal_partial_run(store, "j1", keep_shards=1)
        shards = store.load_shards("j1")
        assert len(shards) == 1 < total
        for key, kind, blocks in shards:
            assert kind in ("single", "multi")
            assert blocks  # real TupleBlocks survived the pickle round trip
            assert blocks[0].base is not None
        store.clear_shards("j1")
        assert store.load_shards("j1") == []

    def test_carry_states(self, store):
        # Nothing journaled: no carry at all.
        store.create_job("j1", "derive", "derive", PAYLOAD)
        assert store.load_carry("j1") is None
        # A journaled plan with no completed shards still pins the seed.
        store.record_plan("j1", 1234)
        carry = store.load_carry("j1")
        assert carry is not None
        assert carry.base_seed == 1234
        # Completed shards ride along.
        _journal_partial_run(store, "j2", keep_shards=1)
        carry = store.load_carry("j2")
        assert carry.base_seed is not None


# -- manager/store integration -----------------------------------------------


class TestJournaledJobs:
    def test_submissions_without_request_are_not_journaled(self, store):
        manager = JobManager(store=store)
        try:
            job = manager.submit(lambda job: 42, label="adhoc")
            assert job.wait(timeout=10)
            assert store.get(job.id) is None
        finally:
            manager.close()

    def test_done_jobs_clear_their_shards(self, store):
        session = Session()
        service = InferenceService(
            session, jobs=JobManager(prefix="derive", store=store)
        )
        try:
            ack = service.derive_async(DeriveRequest.from_dict(PAYLOAD))
            job = service.jobs.get(ack.job_id)
            assert job.wait(timeout=60)
            assert job.state == "done"
            # The terminal journal write happens *after* waiters wake (the
            # in-memory state is authoritative; the journal is best-effort),
            # so poll briefly for the durable side to catch up.
            deadline = time.monotonic() + 10.0
            while store.load_shards(ack.job_id) and time.monotonic() < deadline:
                time.sleep(0.05)
            record = store.get(ack.job_id)
            assert record.state == "done"
            assert record.base_seed is not None
            assert store.load_shards(ack.job_id) == []
        finally:
            service.jobs.close()

    def test_resume_is_bit_identical_and_skips_completed_shards(self, store):
        reference = InferenceService().handle_json("derive", PAYLOAD)
        total = _journal_partial_run(store, "derive-res-1", keep_shards=1)

        service = InferenceService(
            Session(), jobs=JobManager(prefix="derive", store=store)
        )
        try:
            resumed = service.resume_jobs()
            assert resumed == ["derive-res-1"]
            job = service.jobs.get("derive-res-1")
            assert job.wait(timeout=60)
            assert job.state == "done"
            # Bit-identical to the uninterrupted blocking derive.
            assert job.result()["blocks"] == reference["blocks"]
            # The journaled shard was carried, not re-executed.
            shard_events = [
                e for e in job.events() if e["event"] == "shard"
            ]
            assert len(shard_events) == total - 1
            assert store.get("derive-res-1").state == "done"
        finally:
            service.jobs.close()

    def test_interrupted_updates_are_marked_failed(self, store):
        store.create_job("u1", "update", "update", {"changes": {"ops": []}})
        store.set_state("u1", "running")
        service = InferenceService(
            Session(), jobs=JobManager(prefix="derive", store=store)
        )
        try:
            assert service.resume_jobs() == []
            record = store.get("u1")
            assert record.state == "failed"
            assert "not resumable" in record.error
        finally:
            service.jobs.close()

    def test_unresumable_request_is_marked_failed(self, store):
        store.create_job("j1", "derive", "derive", {"nonsense": True})
        store.set_state("j1", "running")
        service = InferenceService(
            Session(), jobs=JobManager(prefix="derive", store=store)
        )
        try:
            assert service.resume_jobs() == []
            record = store.get("j1")
            assert record.state == "failed"
            assert "resume failed" in record.error
        finally:
            service.jobs.close()


# -- the worker loop survives machinery failures (regression) ----------------


class TestWorkerLoopIsolation:
    def test_runner_error_fails_job_but_keeps_worker_alive(self):
        manager = JobManager()
        real_run = manager._run_job

        def flaky(job, work):
            if job.label == "boom":
                raise RuntimeError("journal exploded")
            real_run(job, work)

        manager._run_job = flaky
        try:
            doomed = manager.submit(lambda job: 1, label="boom")
            healthy = manager.submit(lambda job: 2, label="ok")
            assert doomed.wait(timeout=10)
            assert doomed.state == "failed"
            assert "job runner error" in doomed.error
            assert "journal exploded" in doomed.error
            # The FIFO is not wedged: the next job still runs to completion.
            assert healthy.wait(timeout=10)
            assert healthy.state == "done"
            assert healthy.result() == 2
        finally:
            manager.close()


# -- event-stream heartbeats -------------------------------------------------


class TestHeartbeats:
    def test_heartbeats_fill_idle_gaps_without_touching_seqs(self):
        job = Job("j1", "derive")

        def produce():
            time.sleep(0.3)
            job._append({"event": "shard", "job_id": job.id})
            time.sleep(0.3)
            job._finish("done", result=42)

        thread = threading.Thread(target=produce)
        thread.start()
        try:
            received = list(
                job.iter_events(timeout=10.0, heartbeat=0.05)
            )
        finally:
            thread.join()
        beats = [e for e in received if e["event"] == "heartbeat"]
        real = [e for e in received if e["event"] != "heartbeat"]
        assert beats  # idle gaps produced keepalives
        # Real sequence numbers stay contiguous from 1.
        assert [e["seq"] for e in real] == [1, 2]
        # A heartbeat echoes the last delivered seq, never a fresh one.
        delivered = 0
        for event in received:
            if event["event"] == "heartbeat":
                assert event["seq"] == delivered
            else:
                delivered = event["seq"]
        # The log itself never contains heartbeats.
        assert all(e["event"] != "heartbeat" for e in job.events())

    def test_no_heartbeat_when_events_flow(self):
        job = Job("j1", "derive")
        job._append({"event": "shard", "job_id": job.id})
        job._finish("done", result=1)
        received = list(job.iter_events(timeout=5.0, heartbeat=30.0))
        assert [e["event"] for e in received] == ["shard", "done"]

    def test_timeout_still_bounds_an_idle_stream(self):
        job = Job("j1", "derive")
        start = time.monotonic()
        received = list(job.iter_events(timeout=0.3, heartbeat=0.1))
        elapsed = time.monotonic() - start
        assert all(e["event"] == "heartbeat" for e in received)
        assert 0.2 <= elapsed < 5.0
