"""Unit tests for association-rule computation (Def. 2.5)."""

import pytest

from repro.core import mine_frequent_itemsets
from repro.core.rules import AssociationRule, compute_association_rules


@pytest.fixture
def itemsets(fig1_relation):
    return mine_frequent_itemsets(
        fig1_relation.complete_part(), threshold=0.1
    )


class TestAssociationRule:
    def test_confidence(self):
        r = AssociationRule(body=((1, 0),), head=(0, 1), support=0.2, body_support=0.5)
        assert r.confidence == pytest.approx(0.4)

    def test_head_accessors(self):
        r = AssociationRule(body=(), head=(2, 1), support=0.3, body_support=1.0)
        assert r.head_attribute == 2
        assert r.head_value == 1

    def test_body_assigning_head_attribute_rejected(self):
        with pytest.raises(ValueError, match="head attribute"):
            AssociationRule(body=((0, 0),), head=(0, 1), support=0.1, body_support=0.5)

    def test_support_bounds_validated(self):
        with pytest.raises(ValueError):
            AssociationRule(body=(), head=(0, 0), support=0.9, body_support=0.5)
        with pytest.raises(ValueError):
            AssociationRule(body=(), head=(0, 0), support=0.1, body_support=0.0)


class TestComputeRules:
    def test_every_rule_heads_the_requested_attribute(self, itemsets):
        rules = compute_association_rules(itemsets, head_attribute=0)
        assert rules
        assert all(r.head_attribute == 0 for r in rules)

    def test_rule_per_itemset_containing_head(self, itemsets):
        rules = compute_association_rules(itemsets, head_attribute=1)
        containing = [s for s in itemsets if any(a == 1 for a, _ in s)]
        assert len(rules) == len(containing)

    def test_confidences_are_valid_probabilities(self, itemsets):
        for attr in range(4):
            for r in compute_association_rules(itemsets, attr):
                assert 0.0 <= r.confidence <= 1.0 + 1e-12

    def test_paper_confidence_example(self, fig1_schema, itemsets):
        # conf(edu=HS => age=20) = supp(age=20 ^ edu=HS) / supp(edu=HS)
        #                        = (3/8) / (4/8) = 0.75 on the Fig. 1 points.
        age = fig1_schema.index("age")
        edu = fig1_schema.index("edu")
        hs = fig1_schema["edu"].code("HS")
        a20 = fig1_schema["age"].code("20")
        rules = compute_association_rules(itemsets, age)
        rule = next(
            r for r in rules if r.body == ((edu, hs),) and r.head_value == a20
        )
        assert rule.confidence == pytest.approx(0.75)

    def test_empty_body_rules_exist(self, itemsets):
        # Rules from 1-itemsets: the ingredients of the top-level meta-rule.
        rules = compute_association_rules(itemsets, head_attribute=0)
        empties = [r for r in rules if r.body == ()]
        assert empties
        assert all(r.body_support == 1.0 for r in empties)

    def test_no_confidence_threshold(self, itemsets):
        # Section III: rules are computed irrespective of confidence; verify
        # low-confidence rules survive.
        rules = compute_association_rules(itemsets, head_attribute=0)
        assert any(r.confidence < 0.3 for r in rules)
