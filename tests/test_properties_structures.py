"""Property-based tests on factors, possible worlds and the tuple DAG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet import Factor
from repro.core.tuple_dag import TupleDAG
from repro.probdb import (
    Distribution,
    ProbabilisticDatabase,
    TupleBlock,
    expected_count,
    possible_worlds_expected_count,
)
from repro.relational import RelTuple, Schema
from repro.relational.tuples import MISSING_CODE, proper_subsumes

# -- strategies ------------------------------------------------------------------

var_names = ["a", "b", "c", "d"]

#: Fixed global cardinalities — in real use a variable's cardinality is
#: consistent across every factor mentioning it.
VAR_CARDS = {"a": 2, "b": 3, "c": 2, "d": 3}


@st.composite
def factors(draw, max_vars=3):
    k = draw(st.integers(min_value=1, max_value=max_vars))
    chosen = draw(
        st.permutations(var_names).map(lambda p: tuple(p[:k]))
    )
    shape = tuple(VAR_CARDS[v] for v in chosen)
    size = int(np.prod(shape))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=size, max_size=size,
        )
    )
    table = np.asarray(values).reshape(shape)
    return Factor(chosen, table)


@st.composite
def small_schema(draw):
    k = draw(st.integers(min_value=2, max_value=3))
    cards = [draw(st.integers(min_value=2, max_value=3)) for _ in range(k)]
    return Schema.from_domains(
        {f"a{i}": [f"v{j}" for j in range(c)] for i, c in enumerate(cards)}
    )


@st.composite
def incomplete_tuples(draw, schema):
    codes = []
    for attr in schema:
        code = draw(
            st.integers(min_value=-1, max_value=attr.cardinality - 1)
        )
        codes.append(code)
    if all(c != MISSING_CODE for c in codes):
        codes[draw(st.integers(min_value=0, max_value=len(codes) - 1))] = (
            MISSING_CODE
        )
    return RelTuple(schema, codes)


# -- factor algebra ---------------------------------------------------------------


@given(factors(), factors())
def test_factor_product_commutes(f, g):
    p = f.multiply(g)
    q = g.multiply(f).transpose(p.variables)
    assert np.allclose(p.table, q.table)


@given(factors(), factors(), factors())
@settings(max_examples=50)
def test_factor_product_associates(f, g, h):
    p = f.multiply(g).multiply(h)
    q = f.multiply(g.multiply(h)).transpose(p.variables)
    assert np.allclose(p.table, q.table)


@given(factors(max_vars=3))
def test_marginalization_order_does_not_matter(f):
    if len(f.variables) < 2:
        return
    v1, v2 = f.variables[0], f.variables[1]
    a = f.marginalize(v1).marginalize(v2)
    b = f.marginalize(v2).marginalize(v1)
    b = b.transpose(a.variables) if a.variables else b
    assert np.allclose(a.table, b.table)


@given(factors())
def test_total_mass_preserved_by_marginalization(f):
    out = f
    for v in list(f.variables):
        out = out.marginalize(v)
    assert np.isclose(float(out.table), f.table.sum())


@given(factors(max_vars=2))
def test_reduce_slices_table(f):
    v = f.variables[0]
    reduced = f.reduce({v: 0})
    expected = f.table[0]
    assert np.allclose(reduced.table, expected)


# -- possible-world semantics ----------------------------------------------------


@st.composite
def small_databases(draw):
    schema = draw(small_schema())
    num_blocks = draw(st.integers(min_value=0, max_value=3))
    blocks = []
    for _ in range(num_blocks):
        base = draw(incomplete_tuples(schema))
        from itertools import product as iproduct

        domains = [schema[p].domain for p in base.missing_positions]
        outcomes = list(iproduct(*domains))
        weights = [
            draw(st.floats(min_value=0.05, max_value=1.0))
            for _ in outcomes
        ]
        blocks.append(TupleBlock(base, Distribution(outcomes, weights)))
    certain_count = draw(st.integers(min_value=0, max_value=2))
    certain = []
    for _ in range(certain_count):
        codes = [
            draw(st.integers(min_value=0, max_value=attr.cardinality - 1))
            for attr in schema
        ]
        certain.append(RelTuple(schema, codes))
    return ProbabilisticDatabase(schema, certain, blocks)


@given(small_databases())
@settings(max_examples=40, deadline=None)
def test_world_probabilities_sum_to_one(db):
    total = sum(w.probability for w in db.possible_worlds())
    assert total == pytest.approx(1.0)


@given(small_databases(), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_extensional_count_matches_enumeration(db, attr_idx):
    attr_idx = attr_idx % len(db.schema)
    name = db.schema[attr_idx].name
    target = db.schema[attr_idx].domain[0]

    def predicate(t):
        return t.value(name) == target

    assert expected_count(db, predicate) == pytest.approx(
        possible_worlds_expected_count(db, predicate)
    )


@given(small_databases())
@settings(max_examples=30, deadline=None)
def test_most_probable_world_is_argmax(db):
    best = db.most_probable_world()
    for world in db.possible_worlds():
        assert best.probability >= world.probability - 1e-12


# -- tuple DAG structure -----------------------------------------------------------


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_tuple_dag_invariants(data):
    schema = data.draw(small_schema())
    n = data.draw(st.integers(min_value=1, max_value=8))
    tuples = [data.draw(incomplete_tuples(schema)) for _ in range(n)]
    dag = TupleDAG(tuples)

    # Roots are exactly the nodes not properly subsumed by any other node.
    node_tuples = [node.tuple for node in dag.nodes]
    for node in dag.nodes:
        is_root = not any(
            proper_subsumes(other, node.tuple)
            for other in node_tuples
            if other != node.tuple
        )
        assert (node in dag.roots()) == is_root

    # Edges agree with proper subsumption, both directions.
    for node in dag.nodes:
        for child in node.children:
            assert proper_subsumes(node.tuple, child.tuple)
            assert node in child.parents
        for parent in node.parents:
            assert proper_subsumes(parent.tuple, node.tuple)

    # Every non-root is reachable from some root (the promotion guarantee).
    reachable = set()
    frontier = list(dag.roots())
    while frontier:
        node = frontier.pop()
        if id(node) in reachable:
            continue
        reachable.add(id(node))
        frontier.extend(node.children)
    assert len(reachable) == len(dag.nodes)


# -- lineage engine vs enumeration ---------------------------------------------------


@given(small_databases(), st.integers(min_value=0, max_value=5))
@settings(max_examples=30, deadline=None)
def test_engine_selection_matches_enumeration(db, salt):
    """Selection+projection probabilities equal possible-world frequencies."""
    from repro.probdb import QueryEngine

    attr = db.schema[salt % len(db.schema)].name
    target = db.schema[attr].domain[salt % db.schema[attr].cardinality]

    engine = QueryEngine(db)
    results = engine.selection_query(
        lambda r: r.value(attr) == target, project_to=[attr]
    )
    got = {t.values[0]: t.probability for t in results}

    expected = 0.0
    for world in db.possible_worlds():
        if any(t.value(attr) == target for t in world):
            expected += world.probability
    if expected == 0.0:
        assert got == {}
    else:
        assert got[target] == pytest.approx(expected)


@given(small_databases())
@settings(max_examples=20, deadline=None)
def test_engine_self_join_consistency(db):
    """Self-join on all attributes: every row pairs with itself only.

    The membership probability of each (row, row) pair equals the row's own
    probability — contradictory completions must never pair up.
    """
    from repro.probdb import QueryEngine, event_probability

    engine = QueryEngine(db)
    on = [(n, n) for n in db.schema.names]
    left = engine.scan(prefix="l_")
    right = engine.scan(prefix="r_")
    joined = engine.join(
        left,
        right,
        on=[("l_" + a, "r_" + b) for a, b in on],
    )
    for row in joined:
        p = event_probability(row.event, db)
        left_vals = row.values[: len(db.schema)]
        right_vals = row.values[len(db.schema):]
        if left_vals == right_vals:
            assert p >= 0.0
        else:
            # Distinct value rows can only pair when both can coexist;
            # verify against world enumeration.
            expected = 0.0
            for world in db.possible_worlds():
                values = [tuple(t.values()) for t in world]
                if left_vals in values and right_vals in values:
                    expected += world.probability
            assert p == pytest.approx(expected)
