"""Unit tests for test-set masking."""

import numpy as np
import pytest

from repro.bench import mask_relation, mask_tuple


class TestMaskTuple:
    def test_masks_exact_count(self, fig1_relation, rng):
        point = fig1_relation.complete_part()[0]
        for k in (1, 2, 3, 4):
            masked = mask_tuple(point, k, rng)
            assert masked.num_missing == k

    def test_known_values_preserved(self, fig1_relation, rng):
        point = fig1_relation.complete_part()[0]
        masked = mask_tuple(point, 2, rng)
        for pos in masked.complete_positions:
            assert masked.codes[pos] == point.codes[pos]

    def test_bounds_enforced(self, fig1_relation, rng):
        point = fig1_relation.complete_part()[0]
        with pytest.raises(ValueError):
            mask_tuple(point, 0, rng)
        with pytest.raises(ValueError):
            mask_tuple(point, 5, rng)

    def test_positions_vary(self, fig1_relation):
        point = fig1_relation.complete_part()[0]
        rng = np.random.default_rng(0)
        seen = {mask_tuple(point, 1, rng).missing_positions for _ in range(50)}
        # All four positions should be hit over 50 uniform draws.
        assert len(seen) == 4


class TestMaskRelation:
    def test_fixed_count(self, fig1_relation, rng):
        complete = fig1_relation.complete_part()
        masked = mask_relation(complete, 2, rng)
        assert len(masked) == len(complete)
        assert all(t.num_missing == 2 for t in masked)

    def test_count_choices(self, fig1_relation, rng):
        complete = fig1_relation.complete_part()
        masked = mask_relation(complete, [1, 3], rng)
        assert all(t.num_missing in (1, 3) for t in masked)

    def test_empty_choice_rejected(self, fig1_relation, rng):
        with pytest.raises(ValueError):
            mask_relation(fig1_relation.complete_part(), [], rng)

    def test_uniform_attribute_selection(self, fig1_relation):
        complete = fig1_relation.complete_part()
        rng = np.random.default_rng(1)
        counts = np.zeros(4)
        for _ in range(200):
            masked = mask_relation(complete, 1, rng)
            for t in masked:
                counts[t.missing_positions[0]] += 1
        freq = counts / counts.sum()
        assert np.allclose(freq, 0.25, atol=0.05)
