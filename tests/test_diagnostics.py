"""Unit tests for Gibbs convergence diagnostics."""

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.core import gelman_rubin, learn_mrsl, psrf, suggest_chain_lengths
from repro.relational import make_tuple


class TestPSRF:
    def test_identical_chains_give_one(self, rng):
        chains = np.tile(rng.normal(size=200), (4, 1))
        # Identical chains: no between-chain variance.
        assert psrf(chains) == pytest.approx(1.0, abs=0.01)

    def test_mixed_chains_near_one(self, rng):
        chains = rng.normal(size=(4, 500))
        assert psrf(chains) < 1.1

    def test_separated_chains_large(self, rng):
        chains = rng.normal(size=(4, 500)) + np.arange(4)[:, None] * 10
        assert psrf(chains) > 2.0

    def test_constant_identical_chains(self):
        chains = np.ones((3, 50))
        assert psrf(chains) == 1.0

    def test_constant_separated_chains(self):
        chains = np.vstack([np.zeros(50), np.ones(50)])
        assert psrf(chains) == float("inf")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            psrf(np.ones((1, 50)))
        with pytest.raises(ValueError):
            psrf(np.ones(50))


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    net = make_network("BN8", rng)
    data = forward_sample_relation(net, 3000, rng)
    model = learn_mrsl(data, support_threshold=0.005).model
    return data.schema, model


class TestGelmanRubin:
    def test_converges_on_small_network(self, trained):
        schema, model = trained
        t = make_tuple(schema, {"x0": "v0"})
        value = gelman_rubin(model, t, num_chains=4, num_steps=300, rng=1)
        assert value < 1.2

    def test_needs_two_chains(self, trained):
        schema, model = trained
        t = make_tuple(schema, {"x0": "v0"})
        with pytest.raises(ValueError):
            gelman_rubin(model, t, num_chains=1)

    def test_deterministic_with_seed(self, trained):
        schema, model = trained
        t = make_tuple(schema, {"x0": "v0"})
        a = gelman_rubin(model, t, num_chains=3, num_steps=100, rng=5)
        b = gelman_rubin(model, t, num_chains=3, num_steps=100, rng=5)
        assert a == pytest.approx(b)


class TestSuggestChainLengths:
    def test_returns_converged_plan(self, trained):
        schema, model = trained
        t = make_tuple(schema, {"x0": "v0", "x1": "v1"})
        plan = suggest_chain_lengths(
            model, t, initial_samples=100, max_samples=800, rng=2
        )
        assert plan.num_samples <= 800
        assert plan.psrf > 0
        if plan.converged:
            assert plan.psrf <= 1.1

    def test_caps_at_max_samples(self, trained):
        schema, model = trained
        t = make_tuple(schema, {"x0": "v0"})
        plan = suggest_chain_lengths(
            model, t, target_psrf=0.5,  # unreachable: PSRF >= ~1
            initial_samples=50, max_samples=100, rng=3,
        )
        assert not plan.converged
        assert plan.num_samples == 100
