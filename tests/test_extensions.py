"""Tests for the paper-noted extensions.

Section III: "In practice, the complete portion of incomplete tuples in Ri
may also be used to discover association rules."  Section IV: "Other voter
selection mechanisms and voting schemes exist."  Both are implemented as
opt-in extensions; these tests pin their semantics.
"""

import numpy as np
import pytest

from repro.core import (
    VoterChoice,
    VotingScheme,
    infer_single,
    learn_mrsl,
    mine_frequent_itemsets,
    select_voters,
)
from repro.relational import Relation, Schema, make_tuple


class TestIncompleteEvidenceMining:
    def test_incomplete_rows_contribute(self, fig1_relation, fig1_schema):
        fi = mine_frequent_itemsets(
            fig1_relation, threshold=0.05, use_incomplete=True
        )
        # age=20 appears in 7 of 17 rows (4 points + t1, t3, t5).
        age20 = ((0, fig1_schema["age"].code("20")),)
        assert fi.support(age20) == pytest.approx(7 / 17)

    def test_missing_values_never_match(self, fig1_schema):
        rel = Relation.from_rows(
            fig1_schema,
            [["20", "?", "?", "?"], ["?", "?", "?", "?"]],
        )
        fi = mine_frequent_itemsets(rel, threshold=0.05, use_incomplete=True)
        age20 = ((0, fig1_schema["age"].code("20")),)
        assert fi.support(age20) == pytest.approx(0.5)

    def test_anti_monotone_support_preserved(self, fig1_relation):
        fi = mine_frequent_itemsets(
            fig1_relation, threshold=0.05, use_incomplete=True
        )
        for itemset in fi:
            for m in range(len(itemset)):
                subset = itemset[:m] + itemset[m + 1 :]
                assert fi.support(subset) >= fi.support(itemset) - 1e-12

    def test_learning_with_incomplete_evidence(self, fig1_relation):
        base = learn_mrsl(fig1_relation, support_threshold=0.1)
        extended = learn_mrsl(
            fig1_relation, support_threshold=0.1, use_incomplete_evidence=True
        )
        # Both produce valid models; the extended one sees 17 rows not 8.
        assert extended.itemsets.num_points == 17
        assert base.itemsets.num_points == 8
        for lattice in extended.model:
            for m in lattice:
                assert np.isclose(m.probs.sum(), 1.0)
                assert (m.probs > 0).all()

    def test_incomplete_evidence_changes_the_evidence_base(self):
        """With 2 points and many partial rows, estimates use all 22 rows."""
        schema = Schema.from_domains(
            {"a": ["x", "y"], "b": ["x", "y"], "c": ["x", "y"]}
        )
        rows = [["x", "x", "x"], ["y", "y", "y"]]
        rows += [["x", "x", "?"]] * 10 + [["y", "y", "?"]] * 10
        rel = Relation.from_rows(schema, rows)
        base = mine_frequent_itemsets(rel.complete_part(), threshold=0.2)
        extended = mine_frequent_itemsets(
            rel, threshold=0.2, use_incomplete=True
        )
        ax = ((0, 0),)          # a=x
        axbx = ((0, 0), (1, 0))  # a=x ^ b=x
        # Base sees 1-of-2 points; extended sees 11-of-22 rows.
        assert base.support(ax) == pytest.approx(1 / 2)
        assert extended.support(ax) == pytest.approx(11 / 22)
        assert extended.support(axbx) == pytest.approx(11 / 22)
        # The conservative denominator penalizes the often-missing c: its
        # items fall below threshold in the extended mining.
        cx = ((2, 0),)
        assert base.support(cx) == pytest.approx(1 / 2)
        assert cx not in extended


class TestRootVoterChoice:
    @pytest.fixture
    def model(self, fig1_relation):
        return learn_mrsl(fig1_relation, support_threshold=0.1).model

    def test_root_choice_returns_marginal(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K"})
        cpd = infer_single(t, model["age"], VoterChoice.ROOT, "averaged")
        root = model["age"].root
        assert np.allclose(cpd.probs, root.probs)

    def test_root_ignores_evidence(self, model, fig1_schema):
        a = infer_single(
            make_tuple(fig1_schema, {"edu": "HS"}),
            model["age"], VoterChoice.ROOT, "averaged",
        )
        b = infer_single(
            make_tuple(fig1_schema, {"edu": "MS", "inc": "100K"}),
            model["age"], VoterChoice.ROOT, "averaged",
        )
        assert np.allclose(a.probs, b.probs)

    def test_select_voters_root(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS"})
        voters = select_voters(model["age"], t, VoterChoice.ROOT)
        assert len(voters) == 1
        assert voters[0].body == ()


class TestLogPoolScheme:
    @pytest.fixture
    def model(self, fig1_relation):
        return learn_mrsl(fig1_relation, support_threshold=0.1).model

    def test_log_pool_is_valid_cpd(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"})
        cpd = infer_single(t, model["age"], "all", VotingScheme.LOG_POOL)
        assert sum(cpd.probs) == pytest.approx(1.0)
        assert all(p > 0 for p in cpd.probs)

    def test_log_pool_is_geometric_mean(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"})
        matches = model["age"].matching(t)
        stack = np.vstack([m.probs for m in matches])
        expected = np.exp(np.log(stack).mean(axis=0))
        expected = expected / expected.sum()
        cpd = infer_single(t, model["age"], "all", VotingScheme.LOG_POOL)
        assert np.allclose(cpd.probs, expected)

    def test_log_pool_punishes_dissent(self):
        """A single near-zero voter crushes an outcome under the log pool."""
        from repro.core.inference import _combine
        from repro.core.metarule import MetaRule

        confident = MetaRule(0, (), 1.0, np.array([0.9, 0.1]))
        dissent = MetaRule(0, ((1, 0),), 0.5, np.array([1e-5, 1.0 - 1e-5]))
        linear = _combine([confident, dissent], 2, VotingScheme.AVERAGED)
        log_pool = _combine([confident, dissent], 2, VotingScheme.LOG_POOL)
        assert linear[0] == pytest.approx(0.45, abs=0.01)
        assert log_pool[0] < 0.01

    def test_log_pool_in_gibbs(self, fig1_relation, fig1_schema):
        from repro.core import estimate_joint

        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        t = make_tuple(fig1_schema, {"age": "30", "edu": "MS"})
        block = estimate_joint(
            model, t, num_samples=100, burn_in=10,
            v_scheme=VotingScheme.LOG_POOL, rng=0,
        )
        assert sum(block.distribution.probs) == pytest.approx(1.0)
