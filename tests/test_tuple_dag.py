"""Unit tests for the tuple DAG and workload-driven sampling (Algorithm 3)."""

import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.core import TupleDAG, learn_mrsl, workload_sampling
from repro.relational import make_tuple


@pytest.fixture
def setup(rng):
    net = make_network("BN8", rng)
    data = forward_sample_relation(net, 4000, rng)
    model = learn_mrsl(data, support_threshold=0.005).model
    return net, data.schema, model


@pytest.fixture
def workload(setup):
    """A workload echoing Fig. 3: specific tuples under general roots."""
    net, schema, model = setup
    return [
        make_tuple(schema, {"x0": "v0", "x1": "v0"}),   # child of the next
        make_tuple(schema, {"x0": "v0"}),                # root
        make_tuple(schema, {"x1": "v1"}),                # root
        make_tuple(schema, {"x1": "v1", "x3": "v0"}),   # child of x1=v1
        make_tuple(schema, {"x0": "v0", "x2": "v1"}),   # child of x0=v0
    ]


class TestTupleDAG:
    def test_roots_are_unsubsumed(self, setup, workload):
        dag = TupleDAG(workload)
        roots = {tuple(n.tuple.values()) for n in dag.roots()}
        assert roots == {
            ("v0", "?", "?", "?"),
            ("?", "v1", "?", "?"),
        }

    def test_parent_child_edges(self, setup, workload):
        dag = TupleDAG(workload)
        root = dag.node(workload[1])  # x0=v0
        children = {tuple(c.tuple.values()) for c in root.children}
        assert ("v0", "v0", "?", "?") in children
        assert ("v0", "?", "v1", "?") in children

    def test_duplicates_are_merged(self, setup, workload):
        dag = TupleDAG(workload + [workload[0]])
        assert len(dag) == len(workload)

    def test_complete_tuple_rejected(self, setup):
        net, schema, model = setup
        point = make_tuple(schema, ["v0"] * 4)
        with pytest.raises(ValueError, match="complete"):
            TupleDAG([point])

    def test_incomparable_tuples_all_roots(self, setup):
        net, schema, model = setup
        a = make_tuple(schema, {"x0": "v0"})
        b = make_tuple(schema, {"x0": "v1"})
        dag = TupleDAG([a, b])
        assert len(dag.roots()) == 2


class TestWorkloadSampling:
    @pytest.mark.parametrize("strategy", ["tuple_dag", "tuple_at_a_time"])
    def test_blocks_returned_in_input_order(self, setup, workload, strategy):
        net, schema, model = setup
        blocks, _ = workload_sampling(
            model, workload, num_samples=80, burn_in=20,
            strategy=strategy, rng=0,
        )
        assert len(blocks) == len(workload)
        for t, block in zip(workload, blocks):
            assert block.base == t

    def test_block_distributions_sum_to_one(self, setup, workload):
        net, schema, model = setup
        blocks, _ = workload_sampling(
            model, workload, num_samples=60, burn_in=10, rng=0
        )
        for block in blocks:
            assert sum(block.distribution.probs) == pytest.approx(1.0)

    def test_dag_draws_fewer_samples_than_baseline(self, setup, workload):
        net, schema, model = setup
        _, dag_stats = workload_sampling(
            model, workload, num_samples=100, burn_in=20,
            strategy="tuple_dag", rng=0,
        )
        _, base_stats = workload_sampling(
            model, workload, num_samples=100, burn_in=20,
            strategy="tuple_at_a_time", rng=0,
        )
        assert dag_stats.total_draws < base_stats.total_draws

    def test_baseline_draw_count_is_exact(self, setup, workload):
        net, schema, model = setup
        _, stats = workload_sampling(
            model, workload, num_samples=50, burn_in=10,
            strategy="tuple_at_a_time", rng=0,
        )
        # 5 distinct tuples x (10 burn-in + 50 samples).
        assert stats.total_draws == 5 * 60
        assert stats.burn_in_draws == 5 * 10

    def test_sharing_happens(self, setup, workload):
        net, schema, model = setup
        _, stats = workload_sampling(
            model, workload, num_samples=100, burn_in=10,
            strategy="tuple_dag", rng=0,
        )
        assert stats.shared_tuples > 0

    def test_duplicate_tuples_share_one_block(self, setup):
        net, schema, model = setup
        t = make_tuple(schema, {"x0": "v0"})
        blocks, _ = workload_sampling(
            model, [t, t], num_samples=50, burn_in=5, rng=0
        )
        assert blocks[0] is blocks[1]

    def test_dag_and_tuple_at_a_time_agree_on_accuracy(self, setup):
        """The paper found 'no difference' in accuracy between strategies."""
        from repro.bench.metrics import true_joint_posterior

        net, schema, model = setup
        workload = [
            make_tuple(schema, {"x0": "v0"}),
            make_tuple(schema, {"x0": "v0", "x1": "v0"}),
        ]
        kls = {}
        for strategy in ("tuple_dag", "tuple_at_a_time"):
            blocks, _ = workload_sampling(
                model, workload, num_samples=2500, burn_in=200,
                strategy=strategy, rng=3,
            )
            kls[strategy] = [
                true_joint_posterior(net, t).kl_divergence(b.distribution)
                for t, b in zip(workload, blocks)
            ]
        for a, b in zip(kls["tuple_dag"], kls["tuple_at_a_time"]):
            assert abs(a - b) < 0.1

    def test_all_at_a_time_strategy_runs(self, setup):
        net, schema, model = setup
        workload = [make_tuple(schema, {"x0": "v0"})]
        blocks, stats = workload_sampling(
            model, workload, num_samples=60, burn_in=10,
            strategy="all_at_a_time", rng=0,
        )
        assert len(blocks) == 1
        # Unclamped sampling wastes draws on non-matching points.
        assert stats.total_draws >= 60

    def test_invalid_strategy_rejected(self, setup):
        net, schema, model = setup
        t = make_tuple(schema, {"x0": "v0"})
        with pytest.raises(ValueError, match="strategy"):
            workload_sampling(model, [t], strategy="bogus", rng=0)

    def test_invalid_parameters_rejected(self, setup):
        net, schema, model = setup
        t = make_tuple(schema, {"x0": "v0"})
        with pytest.raises(ValueError):
            workload_sampling(model, [t], num_samples=0, rng=0)
        with pytest.raises(ValueError):
            workload_sampling(model, [t], burn_in=-1, rng=0)
