"""Tests for the async job runtime (repro.jobs) and its service surface.

The acceptance properties:

* an async derive round-trips **bit-identically** to the blocking endpoint
  for the same ``DeriveRequest``;
* progress is monotone and reaches ``shards_done == shards_total``;
* cancellation stops at a shard boundary, reports ``cancelled`` with the
  partial progress, and never registers (or serves) a partial database.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.config import DeriveConfig
from repro.api.http import make_server
from repro.api.service import (
    AsyncDeriveResponse,
    DeriveRequest,
    InferenceService,
    ServiceError,
)
from repro.api.session import Session
from repro.exec.base import DerivationCancelled
from repro.jobs import JobManager, ProgressTracker, UnknownJobError
from repro.jobs.progress import ProgressSnapshot
from tests.conftest import FIG1_ROWS

FIG1_SCHEMA = {
    "age": ["20", "30", "40"],
    "edu": ["HS", "BS", "MS"],
    "inc": ["50K", "100K"],
    "nw": ["100K", "500K"],
}
CONFIG = {"support_threshold": 0.1, "num_samples": 200, "burn_in": 20, "seed": 0}

TERMINAL = ("done", "failed", "cancelled")


def _derive_payload(**overrides):
    payload = {
        "schema": FIG1_SCHEMA,
        "rows": FIG1_ROWS,
        "config": CONFIG,
        "include_blocks": True,
    }
    payload.update(overrides)
    return payload


# -- ProgressTracker -------------------------------------------------------


class _FakePlan:
    def __init__(self, shards, tuples):
        self._shards = shards
        self.num_tuples = tuples

    def __len__(self):
        return self._shards


class _FakeResult:
    def __init__(self, n, elapsed=0.5):
        self._n = n
        self.elapsed = elapsed
        self.key = f"fake-{n}"
        self.kind = "single"
        self.worker = "main"

    def __len__(self):
        return self._n

    def summary_dict(self):
        return {"key": self.key, "kind": self.kind, "tuples": self._n,
                "elapsed": self.elapsed, "worker": self.worker}


class TestProgressTracker:
    def test_lifecycle(self):
        now = [0.0]
        tracker = ProgressTracker(workers=2, clock=lambda: now[0])
        snap = tracker.snapshot()
        assert not snap.planned and snap.fraction_done == 0.0

        tracker.on_plan(_FakePlan(4, 10))
        now[0] = 1.0
        snap = tracker.snapshot()
        assert snap.planned and snap.shards_total == 4
        assert snap.tuples_total == 10
        assert snap.shards_running == 2  # capped by workers
        assert snap.elapsed == pytest.approx(1.0)
        assert snap.eta_seconds is None  # no evidence yet

        tracker.on_shard(_FakeResult(5, elapsed=1.0))
        snap = tracker.snapshot()
        assert snap.shards_done == 1 and snap.tuples_done == 5
        assert snap.fraction_done == pytest.approx(0.5)
        # 0.2s/tuple * 5 remaining tuples / 2 workers
        assert snap.eta_seconds == pytest.approx(0.5)
        assert not snap.finished

        for n in (3, 1, 1):
            tracker.on_shard(_FakeResult(n))
        snap = tracker.snapshot()
        assert snap.finished
        assert snap.shards_done == snap.shards_total == 4
        assert snap.tuples_done == snap.tuples_total == 10
        assert snap.shards_running == 0
        assert snap.eta_seconds == 0.0

    def test_event_fanout_and_broken_observer(self):
        events = []

        def observer(kind, snapshot, *rest):
            events.append(kind)
            raise RuntimeError("broken observer")

        tracker = ProgressTracker(on_event=observer)
        tracker.on_plan(_FakePlan(1, 1))  # must not raise
        tracker.on_shard(_FakeResult(1))
        assert events == ["plan", "shard"]

    def test_tracker_reuse_resets_accumulators(self):
        tracker = ProgressTracker()
        tracker.on_plan(_FakePlan(2, 4))
        tracker.on_shard(_FakeResult(2))
        tracker.on_shard(_FakeResult(2))
        assert tracker.snapshot().finished
        # A second derivation with the same tracker starts from zero.
        tracker.on_plan(_FakePlan(3, 6))
        snap = tracker.snapshot()
        assert snap.shards_done == 0 and snap.tuples_done == 0
        assert snap.fraction_done == 0.0 and not snap.finished
        assert snap.shards_total == 3 and snap.tuples_total == 6

    def test_serial_executor_counts_as_one_worker(self):
        from repro.api.config import DeriveConfig

        assert DeriveConfig(executor="serial", workers=4).parallelism == 1
        assert DeriveConfig(executor="process", workers=4).parallelism == 4

    def test_snapshot_serializes(self):
        tracker = ProgressTracker()
        tracker.on_plan(_FakePlan(2, 3))
        wire = json.loads(json.dumps(tracker.snapshot().to_dict()))
        assert wire["shards_total"] == 2
        assert wire["tuples_total"] == 3
        assert 0.0 <= wire["fraction_done"] <= 1.0


# -- JobManager ------------------------------------------------------------


class TestJobManager:
    @pytest.fixture
    def manager(self):
        manager = JobManager()
        yield manager
        manager.close()

    def test_submit_runs_and_stores_result(self, manager):
        job = manager.submit(lambda job: {"answer": 42}, label="t")
        assert job.wait(timeout=10)
        assert job.state == "done"
        assert job.result() == {"answer": 42}
        assert manager.get(job.id) is job
        assert job.id in manager.jobs
        events = job.events()
        assert events[-1]["event"] == "done"
        assert events[-1]["seq"] == len(events)

    def test_failure_is_contained(self, manager):
        def work(job):
            raise ValueError("boom")

        job = manager.submit(work)
        assert job.wait(timeout=10)
        assert job.state == "failed"
        assert "ValueError" in job.error and "boom" in job.error
        with pytest.raises(RuntimeError, match="no result"):
            job.result()
        # The worker survives a failed job.
        ok = manager.submit(lambda job: "fine")
        assert ok.wait(timeout=10) and ok.result() == "fine"

    def test_cancel_before_start(self, manager):
        gate = threading.Event()
        ran = []

        def blocker(job):
            gate.wait(10)
            return "done"

        first = manager.submit(blocker)
        second = manager.submit(lambda job: ran.append(True))
        assert second.cancel()
        gate.set()
        assert second.wait(timeout=10)
        assert second.state == "cancelled"
        assert ran == []  # never ran
        assert first.wait(timeout=10) and first.state == "done"

    def test_cancel_after_finish_refused(self, manager):
        job = manager.submit(lambda job: 1)
        assert job.wait(timeout=10)
        assert not job.cancel()
        assert job.state == "done"

    def test_derivation_cancelled_maps_to_cancelled(self, manager):
        def work(job):
            raise DerivationCancelled("stopped at a shard boundary")

        job = manager.submit(work)
        assert job.wait(timeout=10)
        assert job.state == "cancelled"
        assert "shard boundary" in job.error

    def test_unknown_job(self, manager):
        with pytest.raises(UnknownJobError):
            manager.get("nope")

    def test_iter_events_ends_at_terminal(self, manager):
        job = manager.submit(lambda job: "x")
        kinds = [e["event"] for e in job.iter_events(timeout=10)]
        assert kinds[-1] == "done"

    def test_closed_manager_rejects_work(self):
        manager = JobManager()
        manager.close()
        with pytest.raises(RuntimeError, match="closed"):
            manager.submit(lambda job: 1)

    def test_finished_jobs_are_evicted_beyond_retention(self):
        manager = JobManager(max_finished=2)
        try:
            done = []
            for _ in range(4):
                job = manager.submit(lambda job: 1)
                assert job.wait(timeout=10)
                done.append(job.id)
            # A fifth submission evicts the oldest finished jobs.
            gate = threading.Event()
            running = manager.submit(lambda job: gate.wait(10))
            try:
                assert len(manager.jobs) <= 3  # 2 finished + the live one
                assert running.id in manager.jobs
                assert done[-1] in manager.jobs
                with pytest.raises(UnknownJobError):
                    manager.get(done[0])
            finally:
                gate.set()
        finally:
            manager.close()


# -- Session progress / cancellation ---------------------------------------


class TestSessionProgress:
    def test_progress_callback_is_monotone_and_completes(self, fig1_relation):
        snapshots: list[ProgressSnapshot] = []
        session = Session(DeriveConfig.from_dict(CONFIG))
        session.derive(fig1_relation, progress=snapshots.append)

        assert snapshots and snapshots[0].planned
        done = [s.shards_done for s in snapshots]
        assert done == sorted(done)  # monotone
        tuples = [s.tuples_done for s in snapshots]
        assert tuples == sorted(tuples)
        final = snapshots[-1]
        assert final.finished
        assert final.shards_done == final.shards_total > 0
        assert final.tuples_done == final.tuples_total
        assert final.tuples_total == sum(
            1 for t in fig1_relation if t.num_missing > 0
        )

    def test_progress_rejects_non_callable(self, fig1_relation):
        session = Session(DeriveConfig.from_dict(CONFIG))
        with pytest.raises(TypeError, match="progress"):
            session.derive(fig1_relation, progress="bar")

    def test_cancel_registers_nothing(self, fig1_relation):
        session = Session(DeriveConfig.from_dict(CONFIG))
        with pytest.raises(DerivationCancelled):
            session.derive(fig1_relation, cancel=lambda: True)
        assert session.databases == ()
        # The model was still learned (cancellation hit the derive phase).
        assert session.models == ("default",)

    def test_cancel_mid_run_stops_at_shard_boundary(self, fig1_relation):
        session = Session(DeriveConfig.from_dict(CONFIG))
        seen = []

        def cancel_after_first():
            # seen includes the plan snapshot (shards_done == 0); cancel
            # once a snapshot shows a completed shard.
            return any(done >= 1 for done in seen)

        with pytest.raises(DerivationCancelled) as err:
            session.derive(
                fig1_relation,
                progress=lambda s: seen.append(s.shards_done),
                cancel=cancel_after_first,
            )
        assert session.databases == ()
        report = err.value.report
        assert report is not None
        # Partial: at least one shard completed, but not all of them.
        assert 1 <= len(report.timings) < report.num_shards


# -- Service async endpoints ----------------------------------------------


@pytest.fixture
def service():
    service = InferenceService()
    yield service
    service.jobs.close()


def _wait_done(service, job_id, timeout=30.0):
    job = service.jobs.get(job_id)
    assert job.wait(timeout=timeout), f"job {job_id} never finished"
    return service.job_status(job_id)


class TestServiceAsync:
    def test_async_result_bit_identical_to_blocking(self, service):
        blocking = service.handle_json("derive", _derive_payload())

        ack = AsyncDeriveResponse.from_dict(
            service.handle_json("derive_async", _derive_payload())
        )
        assert ack.state in ("queued", "running")
        status = _wait_done(service, ack.job_id)
        assert status["state"] == "done"
        progress = status["progress"]
        assert progress["shards_done"] == progress["shards_total"] > 0
        assert progress["tuples_done"] == progress["tuples_total"]
        # Terminal progress is frozen: elapsed must not keep ticking.
        time.sleep(0.05)
        assert service.job_status(ack.job_id)["progress"] == progress

        result = service.job_result(ack.job_id)
        assert json.dumps(result) == json.dumps(blocking)  # byte-identical

    def test_async_fails_fast_without_schema_or_model(self, service):
        with pytest.raises(ServiceError) as err:
            service.handle_json(
                "derive_async", {"rows": FIG1_ROWS, "config": CONFIG}
            )
        assert err.value.status == 400
        assert service.jobs.jobs == ()  # nothing was queued

    def test_result_before_done_is_409(self, service):
        gate = threading.Event()
        job = service.jobs.submit(lambda job: gate.wait(10))
        try:
            with pytest.raises(ServiceError) as err:
                service.job_result(job.id)
            assert err.value.status == 409
        finally:
            gate.set()

    def test_result_of_failed_job_is_500(self, service):
        def work(job):
            raise RuntimeError("kaput")

        job = service.jobs.submit(work)
        assert job.wait(timeout=10)
        with pytest.raises(ServiceError) as err:
            service.job_result(job.id)
        assert err.value.status == 500

    def test_unknown_job_is_404(self, service):
        for call in (
            service.job_status,
            service.job_result,
            service.job_cancel,
            service.job_events,
        ):
            with pytest.raises(ServiceError) as err:
                call("nope")
            assert err.value.status == 404

    def test_events_stream_ends_done(self, service):
        ack = service.derive_async(
            DeriveRequest.from_dict(_derive_payload(include_blocks=False))
        )
        events = list(service.job_events(ack.job_id, timeout=30))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "plan"
        assert kinds[-1] == "done"
        shard_events = [e for e in events if e["event"] == "shard"]
        assert shard_events, "no shard events recorded"
        final_progress = events[-1]["progress"]
        assert (
            final_progress["shards_done"]
            == final_progress["shards_total"]
            == len(shard_events)
        )
        # seq resumes: asking after the last event returns nothing new
        assert service.jobs.get(ack.job_id).events(after=events[-1]["seq"]) == []

    def test_health_lists_jobs(self, service):
        ack = service.derive_async(
            DeriveRequest.from_dict(_derive_payload(include_blocks=False))
        )
        _wait_done(service, ack.job_id)
        assert ack.job_id in service.handle_json("health", {})["jobs"]


class TestServiceCancellation:
    """A cancelled job stops at a shard boundary, keeps its partial
    progress, and never exposes a partial database."""

    def test_cancel_mid_derive(self, service):
        cancelled_at = []

        def cancel_on_first_shard(kind, snapshot, *rest):
            if kind == "shard" and not cancelled_at:
                cancelled_at.append(snapshot.shards_done)
                service.job_cancel(job.id)

        # Hold the worker behind a gate so the shard-event hook is installed
        # while the job is still queued — the cancel then lands
        # deterministically after the first completed shard.
        gate = threading.Event()
        service.jobs.submit(lambda job: gate.wait(10))
        ack = service.derive_async(
            DeriveRequest.from_dict(_derive_payload(include_blocks=False))
        )
        job = service.jobs.get(ack.job_id)
        record_event = job.tracker._on_event

        def hook(kind, snapshot, *rest):
            record_event(kind, snapshot, *rest)
            cancel_on_first_shard(kind, snapshot, *rest)

        job.tracker._on_event = hook
        gate.set()
        assert job.wait(timeout=30)

        status = service.job_status(job.id)
        assert status["state"] == "cancelled"
        progress = status["progress"]
        # Partial progress: something finished, but not everything.
        assert 0 < progress["shards_done"] < progress["shards_total"]
        # The partial per-shard report of what did complete rides along.
        assert len(status["exec_report"]["timings"]) == progress["shards_done"]
        # No partial database ever lands: neither registered...
        assert service.session.databases == ()
        # ...nor served.
        with pytest.raises(ServiceError) as err:
            service.job_result(job.id)
        assert err.value.status == 409

    def test_cancel_queued_job_never_runs(self, service):
        gate = threading.Event()
        service.jobs.submit(lambda job: gate.wait(10))
        ack = service.derive_async(
            DeriveRequest.from_dict(_derive_payload(include_blocks=False))
        )
        out = service.job_cancel(ack.job_id)
        assert out["cancel_requested"]
        gate.set()
        status = _wait_done(service, ack.job_id)
        assert status["state"] == "cancelled"
        assert status["progress"]["shards_done"] == 0
        assert service.session.databases == ()


# -- HTTP front-end --------------------------------------------------------


@pytest.fixture
def http_service():
    service = InferenceService()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        service.jobs.close()
        thread.join(timeout=5)


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return response.status, json.loads(response.read())


class TestHttpJobs:
    def test_async_round_trip_bit_identical(self, http_service):
        service, port = http_service
        _, blocking = _post(port, "/v1/derive", _derive_payload())
        _, ack = _post(port, "/v1/derive?mode=async", _derive_payload())
        assert set(ack) == {"job_id", "state"}

        deadline = time.monotonic() + 30
        while True:
            _, status = _get(port, f"/v1/jobs/{ack['job_id']}")
            if status["state"] in TERMINAL:
                break
            assert time.monotonic() < deadline, "job never finished"
            time.sleep(0.05)

        assert status["state"] == "done"
        progress = status["progress"]
        assert progress["shards_done"] == progress["shards_total"] > 0
        _, result = _get(port, f"/v1/jobs/{ack['job_id']}/result")
        assert json.dumps(result) == json.dumps(blocking)

    def test_events_stream_is_chunked_ndjson(self, http_service):
        _, port = http_service
        _, ack = _post(
            port, "/v1/derive?mode=async", _derive_payload(include_blocks=False)
        )
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/jobs/{ack['job_id']}/events?timeout=30",
            timeout=30,
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in response.read().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "plan" and kinds[-1] == "done"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    def test_cancel_endpoint(self, http_service):
        service, port = http_service
        gate = threading.Event()
        service.jobs.submit(lambda job: gate.wait(10))  # occupy the worker
        try:
            _, ack = _post(
                port,
                "/v1/derive?mode=async",
                _derive_payload(include_blocks=False),
            )
            _, out = _post(port, f"/v1/jobs/{ack['job_id']}/cancel", {})
            assert out["cancel_requested"]
        finally:
            gate.set()
        job = service.jobs.get(ack["job_id"])
        assert job.wait(timeout=10)
        assert job.state == "cancelled"

    def test_unknown_job_is_404(self, http_service):
        _, port = http_service
        for path in (
            "/v1/jobs/nope",
            "/v1/jobs/nope/result",
            "/v1/jobs/nope/events",
        ):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(port, path)
            assert err.value.code == 404
            assert "error" in json.loads(err.value.read())
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(port, "/v1/jobs/nope/cancel", {})
        assert err.value.code == 404

    def test_unknown_job_action_is_404(self, http_service):
        _, port = http_service
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(port, "/v1/jobs/x/bogus")
        assert err.value.code == 404

    def test_keep_alive_survives_error_with_unread_body(self, http_service):
        """A 404'd POST must drain its body, or the unread bytes desync the
        next request on the same keep-alive connection."""
        import http.client

        _, port = http_service
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/jobs/x/bogus",
                body=json.dumps({"payload": "x" * 256}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            # The same connection must still parse a follow-up request.
            conn.request("GET", "/v1/health")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            conn.close()

    def test_bad_events_query_params_are_400(self, http_service):
        service, port = http_service
        job = service.jobs.submit(lambda job: 1)
        assert job.wait(timeout=10)
        for bad in ("after=zzz", "timeout=zzz", "timeout=nan"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(port, f"/v1/jobs/{job.id}/events?{bad}")
            assert err.value.code == 400

    def test_unknown_derive_mode_is_400(self, http_service):
        """A typo'd mode must not silently fall back to a blocking derive."""
        _, port = http_service
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(port, "/v1/derive?mode=asinc", _derive_payload())
        assert err.value.code == 400
        assert "mode" in json.loads(err.value.read())["error"]["message"]

    def test_chunked_request_body_is_rejected(self, http_service):
        """No Content-Length means nothing to drain: refuse with 411 and
        close, rather than desync the connection on unread chunks."""
        import http.client

        _, port = http_service
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/query",
                body=iter([b'{"query": {"type": "selection"}}']),
                headers={"Content-Type": "application/json"},
                encode_chunked=True,
            )
            response = conn.getresponse()
            assert response.status == 411
            assert "error" in json.loads(response.read())
        finally:
            conn.close()

    def test_events_timeout_is_clamped_not_crashed(self, http_service):
        """timeout=inf (or beyond the platform's wait limit) must be clamped
        to the ceiling, yielding a well-formed stream — not an OverflowError
        after the chunked headers are already out."""
        service, port = http_service
        job = service.jobs.submit(lambda job: 1)
        assert job.wait(timeout=10)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/jobs/{job.id}/events?timeout=inf",
            timeout=30,
        ) as response:
            events = [json.loads(line) for line in response.read().splitlines()]
        assert events and events[-1]["event"] == "done"
