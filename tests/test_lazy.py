"""Unit tests for lazy, query-targeted derivation."""

import pytest

from repro.core import LazyDeriver, derive_probabilistic_database
from repro.probdb import expected_count
from repro.relational import make_tuple


@pytest.fixture
def deriver(fig1_relation):
    return LazyDeriver(
        fig1_relation,
        support_threshold=0.1,
        num_samples=300,
        burn_in=50,
        rng=0,
    )


class TestLaziness:
    def test_nothing_materialized_initially(self, deriver):
        assert deriver.materialized == 0

    def test_block_materializes_once(self, deriver, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "30", "edu": "MS"})
        a = deriver.block(t)
        b = deriver.block(t)
        assert a is b
        assert deriver.materialized == 1

    def test_query_on_known_attribute_skips_inference(self, deriver):
        # age is known for 15 of the 17 tuples; only tuples with missing
        # age need inference for an age predicate.
        count = deriver.expected_count(lambda t: t.value("age") == "20")
        # t8 <?, HS, ?, ?> and t5 <20, ?, ?, ?>: t5's age is known, so only
        # t8 (and t5's block is decided without inference).
        assert deriver.materialized <= 2
        assert count > 0

    def test_tautology_materializes_nothing(self, deriver):
        count = deriver.expected_count(lambda t: True)
        assert count == pytest.approx(17.0)
        assert deriver.materialized == 0

    def test_contradiction_materializes_nothing(self, deriver):
        count = deriver.expected_count(lambda t: False)
        assert count == 0.0
        assert deriver.materialized == 0


class TestCorrectness:
    def test_expected_count_matches_eager(self, fig1_relation):
        lazy = LazyDeriver(
            fig1_relation, support_threshold=0.1,
            num_samples=400, burn_in=50, rng=3,
        )
        eager = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1,
            num_samples=400, burn_in=50, rng=3,
        ).database

        def pred(t):
            return t.value("nw") == "500K"

        lazy_count = lazy.expected_count(pred)
        eager_count = expected_count(eager, pred)
        # Independent Gibbs runs: equal up to sampling noise.
        assert lazy_count == pytest.approx(eager_count, abs=1.0)

    def test_materialize_all_covers_everything(self, deriver, fig1_relation):
        db = deriver.materialize_all()
        assert len(db.blocks) == fig1_relation.num_incomplete
        assert deriver.materialized == len(
            set(fig1_relation.incomplete_part())
        )

    def test_prefetch_uses_one_workload(self, deriver, fig1_relation):
        multi = [
            t for t in fig1_relation.incomplete_part() if t.num_missing > 1
        ]
        deriver.prefetch(multi)
        assert deriver.materialized == len(set(multi))
        # Subsequent block() calls are cache hits.
        before = deriver.materialized
        deriver.block(multi[0])
        assert deriver.materialized == before

    def test_repr(self, deriver):
        assert "LazyDeriver" in repr(deriver)
