"""Unit tests for ordered Gibbs sampling over MRSL models."""

from itertools import product

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench.metrics import true_joint_posterior
from repro.core import GibbsSampler, estimate_joint, learn_mrsl
from repro.core.gibbs import samples_to_distribution
from repro.probdb.distribution import DEFAULT_SMOOTHING_FLOOR, Distribution
from repro.relational import make_tuple


@pytest.fixture
def bn8_setup(rng):
    net = make_network("BN8", rng)
    data = forward_sample_relation(net, 6000, rng)
    model = learn_mrsl(data, support_threshold=0.005).model
    return net, data.schema, model


class TestChainMechanics:
    def test_chain_requires_incomplete_tuple(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0)
        point = make_tuple(schema, ["v0"] * 4)
        with pytest.raises(ValueError, match="incomplete"):
            sampler.chain(point)

    def test_observed_attributes_stay_clamped(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0)
        t = make_tuple(schema, {"x0": "v1", "x1": "v0"})
        chain = sampler.chain(t)
        for _ in range(20):
            chain.sweep()
            assert chain.state[0] == 1
            assert chain.state[1] == 0

    def test_step_returns_missing_codes(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0)
        t = make_tuple(schema, {"x0": "v1", "x1": "v0"})
        chain = sampler.chain(t)
        sample = chain.step()
        assert len(sample) == 2
        assert all(0 <= v < 2 for v in sample)

    def test_cache_hit_reduces_evaluations(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0)
        t = make_tuple(schema, {"x0": "v1", "x1": "v0"})
        chain = sampler.chain(t)
        for _ in range(200):
            chain.sweep()
        # The conditioning space here has at most 2 attrs x 2 states x
        # 2 values = 8 distinct CPD queries; the cache must absorb the rest.
        assert sampler.cpd_evaluations <= 8
        assert sampler.steps == 400

    def test_conditional_probs_positive(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0)
        codes = np.array([0, 0, 0, 0], dtype=np.int32)
        for attr in range(4):
            probs = sampler.conditional_probs(codes, attr)
            assert (probs > 0).all()
            assert probs.sum() == pytest.approx(1.0)

    def test_naive_path_clamps_zero_cpds(self, bn8_setup):
        """Regression: the strict-positivity invariant is now enforced.

        Learned meta-rules are positive by construction, but hand-built or
        mutated CPDs can carry exact zeros — which would freeze the chain
        out of those states (Gibbs reducibility) and crash ``rng.choice``
        on a zero-sum vector.  The naive path must clamp and renormalize.
        """
        net, schema, model = bn8_setup
        # Corrupt every voter for attribute 0 with a point-mass CPD,
        # simulating a hand-built model that bypassed MetaRule validation.
        point_mass = np.array([1.0, 0.0])
        for rule in model[0]:
            rule.probs = point_mass
        sampler = GibbsSampler(model, rng=0, engine="naive")
        codes = np.array([0, 1, 0, 1], dtype=np.int32)
        probs = sampler.conditional_probs(codes, 0)
        assert (probs > 0).all()
        assert probs.sum() == pytest.approx(1.0)
        # [1, 0] clamps to [1, floor] and renormalizes.
        expected = DEFAULT_SMOOTHING_FLOOR / (1.0 + DEFAULT_SMOOTHING_FLOOR)
        assert probs[1] == pytest.approx(expected)


class TestSamplesToDistribution:
    def test_dense_space_covers_all_outcomes(self, fig1_schema):
        base = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        samples = [(0, 0), (0, 0), (1, 1), (0, 1)]
        dist = samples_to_distribution(fig1_schema, base, samples)
        # inc x nw = 4 outcomes, all present with positive probability.
        assert len(dist) == 4
        assert all(p > 0 for p in dist.probs)
        assert dist[("50K", "100K")] == pytest.approx(0.5, abs=1e-4)

    def test_empty_samples_rejected(self, fig1_schema):
        base = make_tuple(fig1_schema, {"age": "20"})
        with pytest.raises(ValueError):
            samples_to_distribution(fig1_schema, base, [])

    def test_outcomes_are_value_tuples(self, fig1_schema):
        base = make_tuple(fig1_schema, {"age": "20", "edu": "HS", "nw": "500K"})
        dist = samples_to_distribution(fig1_schema, base, [(1,)])
        assert dist.top1() == ("100K",)

    def test_ndarray_samples_equal_tuple_samples(self, fig1_schema):
        base = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        samples = [(0, 0), (1, 1), (0, 1), (0, 0), (1, 0)]
        a = samples_to_distribution(fig1_schema, base, samples)
        b = samples_to_distribution(
            fig1_schema, base, np.array(samples, dtype=np.int32)
        )
        assert a.outcomes == b.outcomes
        assert (a.probs == b.probs).all()

    def test_sample_shape_validated(self, fig1_schema):
        base = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        with pytest.raises(ValueError, match="missing"):
            samples_to_distribution(fig1_schema, base, [(0,)])


def _reference_samples_to_distribution(schema, base, samples, floor):
    """The historical Python counting loop, kept verbatim as the oracle."""
    missing = base.missing_positions
    domains = [schema[attr].domain for attr in missing]
    space = 1
    for d in domains:
        space *= len(d)
    counts = {}
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
    n = len(samples)
    if space <= 100_000:
        outcomes, probs = [], []
        for combo in product(*(range(len(d)) for d in domains)):
            outcomes.append(tuple(d[c] for d, c in zip(domains, combo)))
            probs.append(counts.get(combo, 0) / n)
        return Distribution(outcomes, np.maximum(probs, floor))
    outcomes = [
        tuple(d[c] for d, c in zip(domains, combo)) for combo in counts
    ]
    return Distribution(outcomes, [c / n for c in counts.values()])


class TestVectorizedCounting:
    """`np.unique` counting is bit-identical to the historical dict loop."""

    def test_dense_space_bit_identical(self, fig1_schema, rng):
        base = make_tuple(fig1_schema, {"age": "20"})
        m = len(base.missing_positions)
        cards = [
            fig1_schema[p].cardinality for p in base.missing_positions
        ]
        samples = [
            tuple(int(rng.integers(c)) for c in cards) for _ in range(500)
        ]
        got = samples_to_distribution(fig1_schema, base, samples)
        want = _reference_samples_to_distribution(
            fig1_schema, base, samples, DEFAULT_SMOOTHING_FLOOR
        )
        assert got.outcomes == want.outcomes
        assert (np.asarray(got.probs) == np.asarray(want.probs)).all()
        assert m == 3  # sanity: age known, three missing

    def test_sparse_space_bit_identical(self, rng):
        """Outcome spaces past the dense cap keep first-occurrence order."""
        from repro.relational import Schema

        # 12 attributes of cardinality 4 -> 4^11 >> MAX_DENSE_OUTCOMES
        # missing combinations once one attribute is known.
        schema = Schema.from_domains(
            {f"a{i}": [f"v{j}" for j in range(4)] for i in range(12)}
        )
        base = make_tuple(schema, {"a0": "v0"})
        samples = [
            tuple(int(rng.integers(4)) for _ in range(11)) for _ in range(200)
        ]
        samples += samples[:40]  # duplicates exercise the counting
        got = samples_to_distribution(schema, base, samples)
        want = _reference_samples_to_distribution(
            schema, base, samples, DEFAULT_SMOOTHING_FLOOR
        )
        assert got.outcomes == want.outcomes
        assert (np.asarray(got.probs) == np.asarray(want.probs)).all()


class TestConvergence:
    def test_joint_estimate_tracks_true_posterior(self, bn8_setup):
        """Gibbs over a well-trained MRSL approximates the BN posterior."""
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0", "x1": "v1"})
        block = estimate_joint(
            model, t, num_samples=3000, burn_in=200, rng=1
        )
        true = true_joint_posterior(net, t)
        kl = true.kl_divergence(block.distribution)
        assert kl < 0.12, f"KL {kl} too large: sampler not converging"

    def test_estimate_reproducible_with_seed(self, bn8_setup):
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0"})
        a = estimate_joint(model, t, num_samples=300, burn_in=50, rng=7)
        b = estimate_joint(model, t, num_samples=300, burn_in=50, rng=7)
        assert np.allclose(a.distribution.probs, b.distribution.probs)

    def test_block_base_is_input_tuple(self, bn8_setup):
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0"})
        block = estimate_joint(model, t, num_samples=100, burn_in=10, rng=0)
        assert block.base == t
        assert block.missing_names == ("x1", "x2", "x3")
