"""Unit tests for the meta-rule semi-lattice (Defs 2.7-2.9)."""

import numpy as np
import pytest

from repro.core import learn_mrsl
from repro.core.metarule import MetaRule
from repro.core.mrsl import MRSL, MRSLModel
from repro.relational import make_tuple


def mk(head, body, weight=0.5, card=3):
    probs = np.full(card, 1.0 / card)
    return MetaRule(head, body, weight, probs)


@pytest.fixture
def age_lattice():
    """A hand-built MRSL for attribute 0 echoing Fig. 2's shape."""
    rules = [
        mk(0, ()),                      # P(age)
        mk(0, ((1, 0),)),               # P(age | edu=HS)
        mk(0, ((2, 0),)),               # P(age | inc=50K)
        mk(0, ((2, 1),)),               # P(age | inc=100K)
        mk(0, ((3, 1),)),               # P(age | nw=500K)
        mk(0, ((1, 0), (2, 0))),        # P(age | edu=HS ^ inc=50K)
    ]
    return MRSL(0, rules)


class TestStructure:
    def test_len_and_iteration(self, age_lattice):
        assert len(age_lattice) == 6
        assert len(list(age_lattice)) == 6

    def test_root_is_empty_body(self, age_lattice):
        assert age_lattice.root is not None
        assert age_lattice.root.body == ()

    def test_get_by_body(self, age_lattice):
        assert age_lattice.get(((1, 0),)) is not None
        assert age_lattice.get(((9, 9),)) is None

    def test_duplicate_bodies_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MRSL(0, [mk(0, ()), mk(0, ())])

    def test_wrong_head_rejected(self):
        with pytest.raises(ValueError, match="head attribute"):
            MRSL(0, [mk(1, ())])

    def test_children_are_one_item_refinements(self, age_lattice):
        root = age_lattice.root
        children = age_lattice.children(root)
        assert {c.body for c in children} == {
            ((1, 0),),
            ((2, 0),),
            ((2, 1),),
            ((3, 1),),
        }

    def test_parents(self, age_lattice):
        deep = age_lattice.get(((1, 0), (2, 0)))
        parents = age_lattice.parents(deep)
        assert {p.body for p in parents} == {((1, 0),), ((2, 0),)}

    def test_max_body_size(self, age_lattice):
        assert age_lattice.max_body_size == 2


class TestMatching:
    def test_paper_matching_example(self, fig1_schema, age_lattice):
        # t1: <age=?, edu=HS, inc=50K, nw=500K> matches five meta-rules.
        t1 = make_tuple(
            fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"}
        )
        matches = age_lattice.matching(t1)
        assert len(matches) == 5
        bodies = {m.body for m in matches}
        assert () in bodies
        assert ((1, 0), (2, 0)) in bodies
        assert ((2, 1),) not in bodies  # inc=100K does not match

    def test_best_matching_is_most_specific(self, fig1_schema, age_lattice):
        t1 = make_tuple(
            fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"}
        )
        best = age_lattice.best_matching(t1)
        bodies = {m.body for m in best}
        # The 2-item rule and the unsubsumed nw rule are the most specific.
        assert bodies == {((1, 0), (2, 0)), ((3, 1),)}

    def test_only_root_matches_value_free_tuple(self, fig1_schema, age_lattice):
        t = make_tuple(fig1_schema, {})
        matches = age_lattice.matching(t)
        assert [m.body for m in matches] == [()]

    def test_head_attribute_value_ignored_in_matching(
        self, fig1_schema, age_lattice
    ):
        # Known head values must not affect the match (they're never in a body).
        t = make_tuple(fig1_schema, {"age": "30", "edu": "HS"})
        bodies = {m.body for m in age_lattice.matching(t)}
        assert bodies == {(), ((1, 0),)}

    def test_most_specific_static(self, age_lattice):
        root = age_lattice.root
        leaf = age_lattice.get(((1, 0), (2, 0)))
        kept = MRSL.most_specific([root, leaf])
        assert kept == [leaf]


class TestModel:
    @pytest.fixture
    def model(self, fig1_relation):
        return learn_mrsl(fig1_relation, support_threshold=0.1).model

    def test_one_lattice_per_attribute(self, model, fig1_schema):
        assert len(model) == len(fig1_schema)
        for name in fig1_schema.names:
            assert model[name].head_attribute == fig1_schema.index(name)

    def test_lookup_by_index_and_name(self, model):
        assert model[0] is model["age"]

    def test_size_totals_meta_rules(self, model):
        assert model.size() == sum(len(lat) for lat in model)

    def test_missing_lattice_rejected(self, fig1_schema, model):
        with pytest.raises(ValueError, match="no semi-lattice"):
            MRSLModel(fig1_schema, [model[0]])

    def test_duplicate_lattice_rejected(self, fig1_schema, model):
        with pytest.raises(ValueError, match="duplicate"):
            MRSLModel(fig1_schema, [model[0], model[0], model[1], model[2], model[3]])

    def test_describe_mentions_attribute_names(self, model, fig1_schema):
        text = model["age"].describe(fig1_schema)
        assert "P(age)" in text
