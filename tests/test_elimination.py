"""Unit tests for exact inference by variable elimination."""

import numpy as np
import pytest

from repro.bayesnet import (
    generate_instance,
    joint_posterior,
    marginal,
    posterior,
    random_dag_topology,
)


class TestChainNetwork:
    """Hand-verifiable posteriors on the a -> b -> c chain fixture."""

    def test_prior_marginal_of_root(self, chain_network):
        m = marginal(chain_network, "a")
        assert m[0] == pytest.approx(0.7)
        assert m[1] == pytest.approx(0.3)

    def test_marginal_of_middle(self, chain_network):
        # P(b=0) = 0.7*0.9 + 0.3*0.2 = 0.69
        m = marginal(chain_network, "b")
        assert m[0] == pytest.approx(0.69)

    def test_posterior_given_child(self, chain_network):
        # P(a=0 | b=0) = 0.7*0.9 / 0.69
        p = posterior(chain_network, "a", {"b": 0})
        assert p[0] == pytest.approx(0.63 / 0.69)

    def test_posterior_given_grandchild(self, chain_network):
        # P(c=0) via b: P(c=0|b=0)=0.6, P(c=0|b=1)=0.3.
        # P(a=0|c=0) = sum_b P(a=0)P(b|a=0)P(c=0|b) / P(c=0)
        num = 0.7 * (0.9 * 0.6 + 0.1 * 0.3)
        den = num + 0.3 * (0.2 * 0.6 + 0.8 * 0.3)
        p = posterior(chain_network, "a", {"c": 0})
        assert p[0] == pytest.approx(num / den)

    def test_evidence_dseparates(self, chain_network):
        # Given b, c is independent of a.
        with_a = posterior(chain_network, "c", {"b": 1, "a": 0})
        without_a = posterior(chain_network, "c", {"b": 1})
        assert with_a[0] == pytest.approx(without_a[0])

    def test_joint_posterior_factorizes_over_chain(self, chain_network):
        joint = joint_posterior(chain_network, ("a", "c"), {"b": 0})
        pa = posterior(chain_network, "a", {"b": 0})
        pc = posterior(chain_network, "c", {"b": 0})
        # a and c are conditionally independent given b.
        for (ca, cc), p in joint:
            assert p == pytest.approx(pa[ca] * pc[cc])

    def test_joint_posterior_outcome_order(self, chain_network):
        joint = joint_posterior(chain_network, ("a", "c"), {})
        assert joint.outcomes == ((0, 0), (0, 1), (1, 0), (1, 1))


class TestValidation:
    def test_query_overlapping_evidence_rejected(self, chain_network):
        with pytest.raises(ValueError, match="query and evidence"):
            posterior(chain_network, "a", {"a": 0})

    def test_empty_query_rejected(self, chain_network):
        with pytest.raises(ValueError):
            joint_posterior(chain_network, (), {})

    def test_posterior_sums_to_one(self, chain_network):
        p = posterior(chain_network, "b", {"c": 1})
        assert sum(p.probs) == pytest.approx(1.0)


class TestAgainstJointEnumeration:
    """Variable elimination must agree with brute-force joint computation."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        topo = random_dag_topology([2, 3, 2, 3], edge_prob=0.5, seed=seed)
        net = generate_instance(topo, rng)
        joint = net.joint_factor().transpose(net.names)

        evidence = {"x0": 1}
        # Brute force P(x2 | x0=1).
        table = joint.table[1]  # fix x0=1; axes now x1, x2, x3
        px2 = table.sum(axis=(0, 2))
        px2 = px2 / px2.sum()

        p = posterior(net, "x2", evidence)
        assert np.allclose(p.probs, px2, atol=1e-10)

    def test_joint_query_matches_enumeration(self, chain_network):
        joint = joint_posterior(chain_network, ("a", "b"), {"c": 1})
        full = chain_network.joint_factor().transpose(("a", "b", "c"))
        table = full.table[:, :, 1]
        table = table / table.sum()
        for (ca, cb), p in joint:
            assert p == pytest.approx(table[ca, cb])
